"""Unit tests for the NIC serialization model."""

import math

import pytest

from repro.errors import NetworkError
from repro.net import Nic
from repro.sim import Simulator


def test_single_transmit_takes_size_over_bandwidth():
    sim = Simulator()
    nic = Nic(sim)
    done = []
    # 1250 bytes at 10 kb/s = 1250*8/10000 = 1.0 s
    nic.transmit(1250, 10_000.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(1.0)]


def test_back_to_back_transmits_serialize_fifo():
    sim = Simulator()
    nic = Nic(sim)
    done = []
    nic.transmit(1250, 10_000.0, lambda: done.append(("a", sim.now)))
    nic.transmit(1250, 10_000.0, lambda: done.append(("b", sim.now)))
    nic.transmit(2500, 10_000.0, lambda: done.append(("c", sim.now)))
    sim.run()
    assert done == [
        ("a", pytest.approx(1.0)),
        ("b", pytest.approx(2.0)),
        ("c", pytest.approx(4.0)),
    ]


def test_sending_time_matches_paper_formula():
    """§4.3: sending time = fanout * block / bandwidth."""
    sim = Simulator()
    nic = Nic(sim)
    fanout, block, bw = 10, 250 * 1024, 25e6  # global scenario, 250 KB
    finished = []
    for _ in range(fanout):
        nic.transmit(block, bw, lambda: finished.append(sim.now))
    sim.run()
    expected = fanout * block * 8 / bw
    assert finished[-1] == pytest.approx(expected)


def test_idle_gap_resets_queue():
    sim = Simulator()
    nic = Nic(sim)
    done = []
    nic.transmit(1250, 10_000.0, lambda: done.append(sim.now))
    sim.schedule(5.0, nic.transmit, 1250, 10_000.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(1.0), pytest.approx(6.0)]


def test_queueing_delay_accounting():
    sim = Simulator()
    nic = Nic(sim)
    nic.transmit(1250, 10_000.0, lambda: None)  # finishes t=1
    nic.transmit(1250, 10_000.0, lambda: None)  # queued 1s, finishes t=2
    sim.run()
    assert nic.total_queueing_delay == pytest.approx(1.0)
    assert nic.total_tx_time == pytest.approx(2.0)
    assert nic.bytes_sent == 2500
    assert nic.messages_sent == 2


def test_backlog_and_busy():
    sim = Simulator()
    nic = Nic(sim)
    nic.transmit(2500, 10_000.0, lambda: None)  # 2 s of traffic
    assert nic.busy
    assert nic.backlog == pytest.approx(2.0)
    assert nic.max_backlog == pytest.approx(2.0)
    sim.run()
    assert not nic.busy
    assert nic.backlog == 0.0


def test_infinite_bandwidth_is_instant():
    sim = Simulator()
    nic = Nic(sim)
    done = []
    nic.transmit(10**9, math.inf, lambda: done.append(sim.now))
    sim.run()
    assert done == [0.0]


def test_utilization():
    sim = Simulator()
    nic = Nic(sim)
    nic.transmit(1250, 10_000.0, lambda: None)  # 1 s busy
    sim.run(until=4.0)
    assert nic.utilization() == pytest.approx(0.25)


def test_invalid_arguments():
    sim = Simulator()
    nic = Nic(sim)
    with pytest.raises(NetworkError):
        nic.transmit(-1, 10_000.0, lambda: None)
    with pytest.raises(NetworkError):
        nic.transmit(10, 0.0, lambda: None)


# ---------------------------------------------------------------------------
# Windowed accounting: busy fractions and bytes over [start, end)
# ---------------------------------------------------------------------------
def test_busy_in_adjacent_windows_partition():
    sim = Simulator()
    nic = Nic(sim)
    nic.transmit(1250, 10_000.0, lambda: None)  # busy [0, 1)
    sim.run(until=2.0)
    nic.transmit(1250, 10_000.0, lambda: None)  # busy [2, 3)
    sim.run(until=5.0)
    total = nic.busy_in(0.0, 5.0)
    assert total == pytest.approx(2.0)
    for cut in (0.5, 1.0, 2.0, 2.5, 3.0, 4.0):
        assert nic.busy_in(0.0, cut) + nic.busy_in(cut, 5.0) == pytest.approx(
            total
        ), cut


def test_windowed_utilization_and_bytes():
    sim = Simulator()
    nic = Nic(sim)
    nic.transmit(1250, 10_000.0, lambda: None)
    sim.run(until=4.0)
    assert nic.utilization() == pytest.approx(0.25)
    assert nic.utilization(since=0.0, until=1.0) == pytest.approx(1.0)
    # Idle window after the transmit: nothing carries over.
    assert nic.utilization(since=1.0) == pytest.approx(0.0)
    # Bytes attribute to the enqueue time (documented convention).
    assert nic.bytes_in(0.0, 1.0) == 1250
    assert nic.bytes_in(1.0, 4.0) == 0


def test_in_flight_transmit_counts_toward_window():
    sim = Simulator()
    nic = Nic(sim)
    nic.transmit(12_500, 10_000.0, lambda: None)  # 10 s serialization
    sim.run(until=4.0)
    assert nic.busy_in(0.0, 4.0) == pytest.approx(4.0)
    assert nic.utilization() == pytest.approx(1.0)


def test_queue_depth_high_water_mark():
    sim = Simulator()
    nic = Nic(sim)
    for _ in range(3):
        nic.transmit(1250, 10_000.0, lambda: None)
    assert nic.max_queue_depth == 3
    sim.run()
    nic.transmit(1250, 10_000.0, lambda: None)
    sim.run()
    assert nic.max_queue_depth == 3  # high water, not current depth
