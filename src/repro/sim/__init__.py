"""Deterministic discrete-event simulation kernel.

The kernel provides:

- :class:`~repro.sim.engine.Simulator` -- an event heap with a virtual clock.
- :class:`~repro.sim.process.Task` -- generator-based coroutines ("simulated
  processes") that suspend on :class:`~repro.sim.process.Sleep` and
  :class:`~repro.sim.process.WaitSignal`.
- :class:`~repro.sim.cpu.Cpu` -- a FIFO busy-server modelling one core of
  compute per replica (used to charge cryptographic processing time).
- :class:`~repro.sim.timers.Timer` -- restartable one-shot timers (used by
  the consensus pacemaker).

Determinism: given the same seed and the same sequence of API calls, two runs
produce byte-identical traces. Ties in the event heap are broken by a
monotonically increasing sequence number, never by object identity.
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.process import TIMEOUT, Signal, Sleep, Task, WaitSignal
from repro.sim.cpu import Cpu
from repro.sim.timers import Timer

__all__ = [
    "Simulator",
    "EventHandle",
    "Task",
    "Signal",
    "Sleep",
    "WaitSignal",
    "TIMEOUT",
    "Cpu",
    "Timer",
]
