"""Figure 6: throughput across scenarios and system sizes (§7.4).

The paper's headline figure. Shapes to reproduce:

- Kauri wins everywhere; the advantage grows with N and with shrinking
  bandwidth (up to 28x over HotStuff-secp at N=400, global).
- Kauri-np (trees without pipelining, standing in for Motor/Omniledger)
  beats HotStuff only in constrained-bandwidth scenarios with enough
  nodes; pipelining is what makes trees pay off universally.
- HotStuff-bls >= HotStuff-secp except on the fastest network, where the
  CPU-heavier BLS operations bite.

The grid comes from the checked-in ``scenarios/fig6.toml`` pack; the bench
substitutes its size axis (REPRO_BENCH_FULL_N widens it to the paper's 400).
"""

from conftest import SCALE, run_grid, run_once

from repro.analysis import format_table, saturation_marker
from repro.scenarios import compile_pack, load_pack


def test_fig6_throughput_across_scenarios(benchmark, save_table, bench_ns):
    grid = compile_pack(
        load_pack("fig6"), scale=SCALE, axes={"n": list(bench_ns)}
    )
    results = run_once(benchmark, lambda: run_grid(grid.specs))
    rows = [
        (
            r.scenario,
            r.n,
            r.mode,
            round(r.throughput_txs / 1000.0, 3),
            round(r.latency["p50"], 2),
            saturation_marker(r),
        )
        for r in results
    ]
    save_table(
        "fig6",
        format_table(
            ("Scenario", "N", "System", "Ktx/s", "p50 lat (s)", "CPU"),
            rows,
            title="Figure 6: throughput across scenarios",
        ),
    )

    def tput(scenario, n, mode):
        return next(
            r.throughput_txs
            for r in results
            if r.scenario == scenario and r.n == n and r.mode == mode
        )

    for scenario in ("national", "regional", "global"):
        for n in bench_ns:
            # Kauri outperforms every baseline in every scenario (§7.4)
            for baseline in ("kauri-np", "hotstuff-secp", "hotstuff-bls"):
                assert tput(scenario, n, "kauri") > tput(scenario, n, baseline), (
                    scenario, n, baseline,
                )

    # the Kauri advantage over HotStuff-secp grows with N (global scenario)
    ratios = [tput("global", n, "kauri") / tput("global", n, "hotstuff-secp") for n in bench_ns]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 8  # paper: 28x at N=400; >=8x already at N=200

    # Kauri-np beats HotStuff in the regional scenario at N >= 200 (§7.4)
    if 200 in bench_ns:
        assert tput("regional", 200, "kauri-np") > tput("regional", 200, "hotstuff-secp")
