"""Event-heap simulator core.

The :class:`Simulator` owns a virtual clock and four event stores that
together hold every scheduled callback. Everything else in the library
(network links, CPUs, protocol state machines) is built on top of the
``schedule*`` family.

The simulator is single-threaded and deterministic: events scheduled for
the same instant fire in scheduling order (FIFO), enforced by a global
sequence counter. The four stores exist purely so each scheduling pattern
pays only for what it needs -- the merged firing order is always exactly
``(time, seq)``, as if everything lived on one heap:

- **Heap** -- the general store. Entries are plain tuples, either
  ``(time, seq, handle)`` for cancellable events or handle-free
  ``(time, seq, fn, args)`` for fire-and-forget callbacks whose time is
  out of order with the run queue's tail (``seq`` is unique, so ``heapq``
  never compares beyond it).
- **Now-queue** -- a FIFO for :meth:`Simulator.schedule_now`: zero-delay,
  never-cancelled continuations (task wakeups, signal deliveries). These
  are appended in ``(time, seq)`` order by construction, so a deque
  replaces O(log n) heap traffic with O(1) appends/pops.
- **Run queue** -- a deque whose entries are nondecreasing in
  ``(time, seq)`` *by invariant*: :meth:`Simulator.schedule_call` /
  :meth:`schedule_call_at` append here whenever the new callback does not
  sort before the current tail, which covers the fabric's bread and
  butter (a multicast's chained serialization completions and deliveries
  arrive as monotone runs) -- and falls back to the heap otherwise. Timer
  -wheel flushes absorb whole sorted batches the same way. Popping is
  O(1), and same-timestamp runs drain in one pass of the firing loop
  without per-event heap traffic.
- **Timer wheel** -- :mod:`repro.sim.wheel`, behind
  :meth:`Simulator.schedule_timeout`: timeouts that are overwhelmingly
  cancelled (pacemaker watchdogs, impatient receives) park in hashed time
  slots where cancellation is one dict delete; only survivors are flushed
  into the run queue or heap, carrying their original ``(time, seq)``.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.errors import SimulationError
from repro.sim.wheel import TimeoutHandle, TimerWheel


class EventHandle:
    """Handle for a scheduled callback; supports O(1) cancellation.

    Cancellation is lazy: the heap entry stays in place and is skipped when
    popped. ``cancelled`` and ``fired`` are exposed for introspection. The
    owning simulator is notified on cancellation so it can keep its live
    pending-event counter exact and compact the heap when cancelled entries
    dominate it.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., None]] = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running; idempotent, no-op if fired."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        self.fn = None  # break reference cycles early
        self.args = ()
        if self._sim is not None:
            self._sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`. All stochastic
        behaviour in the library draws from :attr:`rng`, so a seed fully
        determines a run.
    strict:
        When ``True`` (default) an exception escaping a task or callback
        aborts :meth:`run` immediately. When ``False`` failures are recorded
        in :attr:`failures` and the run continues (useful for fault-injection
        experiments that expect tasks to die).
    """

    def __init__(self, seed: int = 0, strict: bool = True):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self.strict = strict
        self.failures: List[BaseException] = []
        #: (time, seq, handle) or handle-free (time, seq, fn, args) tuples.
        self._heap: List[tuple] = []
        #: Zero-delay raw entries (time, seq, fn, args), FIFO == (time, seq).
        self._now_queue: Deque[tuple] = deque()
        #: Sorted-by-construction entries, nondecreasing (time, seq): raw
        #: (time, seq, fn, args) appended by the schedule_call fast path
        #: and (time, seq, handle) batches absorbed from wheel flushes.
        self._run_queue: Deque[tuple] = deque()
        self._wheel = TimerWheel(self)
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self._pending = 0  # live (non-cancelled, non-fired) events
        self._cancelled_in_heap = 0  # lazily-cancelled entries awaiting pop

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        # Inlined schedule_at: this is the hottest allocation site in a run.
        time = self.now + delay
        self._seq += 1
        handle = EventHandle(time, self._seq, fn, args, sim=self)
        heapq.heappush(self._heap, (time, self._seq, handle))
        self._pending += 1
        return handle

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        self._seq += 1
        handle = EventHandle(time, self._seq, fn, args, sim=self)
        heapq.heappush(self._heap, (time, self._seq, handle))
        self._pending += 1
        return handle

    def schedule_call(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Handle-free :meth:`schedule`: no cancellation, no ``EventHandle``.

        For fire-and-forget callbacks on hot paths (message deliveries,
        serialization completions) where allocating and tracking a handle
        is pure overhead. Firing order is identical to :meth:`schedule`.
        When the new callback does not sort before the run queue's tail --
        the overwhelmingly common case for a multicast's monotone
        completion/delivery runs -- it is appended there in O(1) instead
        of paying O(log n) heap traffic.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        self._seq += 1
        runq = self._run_queue
        if not runq or time >= runq[-1][0]:
            runq.append((time, self._seq, fn, args))
        else:
            heapq.heappush(self._heap, (time, self._seq, fn, args))
        self._pending += 1

    def schedule_call_at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Handle-free :meth:`schedule_at` (see :meth:`schedule_call`)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        self._seq += 1
        runq = self._run_queue
        if not runq or time >= runq[-1][0]:
            runq.append((time, self._seq, fn, args))
        else:
            heapq.heappush(self._heap, (time, self._seq, fn, args))
        self._pending += 1

    def schedule_now(self, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at the current instant, after already-scheduled
        same-instant events (plain FIFO semantics, like ``schedule(0.0, ...)``).

        Handle-free and heap-free: entries go on a deque that is ordered by
        construction (time never decreases, ``seq`` increases), the natural
        fit for task wakeups and signal deliveries -- continuations that are
        never cancelled and almost always fire immediately.
        """
        self._seq += 1
        self._now_queue.append((self.now, self._seq, fn, args))
        self._pending += 1

    def schedule_timeout(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> TimeoutHandle:
        """Schedule a *probably-cancelled* callback ``delay`` seconds out.

        Same contract as :meth:`schedule` (returns a cancellable handle,
        fires in exact ``(time, seq)`` order), but the timer parks in the
        :class:`~repro.sim.wheel.TimerWheel`: cancelling it while parked is
        one dict delete instead of a lazy heap tombstone. Use for watchdogs
        and receive deadlines; use :meth:`schedule` for events expected to
        fire.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        handle = TimeoutHandle(self.now + delay, self._seq, fn, args, self._wheel)
        self._wheel.insert(handle)
        self._pending += 1
        return handle

    def _absorb_timeouts(self, handles: list) -> None:
        """Take a ``(time, seq)``-sorted batch of flushed wheel survivors.

        Each survivor extends the run queue with an O(1) append when it
        does not sort before the current tail; out-of-order stragglers
        (possible when a coarse wheel slot emitted later times before a
        fine one) fall back to heap pushes. Original firing keys are kept,
        so the merged pop order is bit-identical to heap-only flushing.
        """
        runq = self._run_queue
        heap = self._heap
        for handle in handles:
            if runq:
                tail = runq[-1]
                tail_time = tail[0]
                in_order = handle.time > tail_time or (
                    handle.time == tail_time and handle.seq > tail[1]
                )
            else:
                in_order = True
            if in_order:
                handle._in_runq = True
                runq.append((handle.time, handle.seq, handle))
            else:
                heapq.heappush(heap, (handle.time, handle.seq, handle))

    def _note_cancelled(self) -> None:
        """Bookkeeping hook for lazy (in-heap) cancellations.

        Keeps :attr:`pending_events` O(1) and compacts the heap when
        cancelled entries exceed half of it -- hygiene for runs that cancel
        heap-resident events faster than they pop.
        """
        self._pending -= 1
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap > len(self._heap) // 2
            and len(self._heap) >= 64
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (pop order is unchanged:
        entries are strictly ordered by (time, seq)). Handle-free entries
        cannot be cancelled and are always kept."""
        # In place: run() holds a local alias to the heap list across
        # callbacks, so the list object must never be replaced.
        self._heap[:] = [
            entry for entry in self._heap if len(entry) == 4 or not entry[2].cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _next_entry(self, pop: bool):
        """The next live entry across every store, or ``None``.

        Drains lazily-cancelled heap/run-queue tombstones on the way and
        flushes due wheel slots, so the returned entry is globally next in
        ``(time, seq)`` order.
        """
        heap = self._heap
        queue = self._now_queue
        runq = self._run_queue
        wheel = self._wheel
        while True:
            head = queue[0] if queue else None
            top = heap[0] if heap else None
            # Tuple comparison decides on (time, seq); seq is unique, so the
            # heterogeneous third elements are never compared.
            src = 0  # 0: now-queue, 1: heap, 2: run queue
            if top is not None and (head is None or top < head):
                head = top
                src = 1
            rtop = runq[0] if runq else None
            if rtop is not None and (head is None or rtop < head):
                head = rtop
                src = 2
            if wheel._due:
                # A due slot may hold a timer ordered before `head`.
                limit = wheel._next_due if head is None else head[0]
                if wheel._next_due <= limit:
                    wheel.flush_due(limit)
                    continue
            if head is None:
                return None
            if src == 1:
                if len(head) == 3 and head[2].cancelled:
                    heapq.heappop(heap)
                    self._cancelled_in_heap -= 1
                    continue
                if pop:
                    heapq.heappop(heap)
            elif src == 2:
                if len(head) == 3 and head[2].cancelled:
                    runq.popleft()  # cancel already fixed the counters
                    continue
                if pop:
                    runq.popleft()
            elif pop:
                queue.popleft()
            return head

    def _fire(self, entry: tuple) -> None:
        """Advance the clock to ``entry`` and run its callback."""
        time = entry[0]
        if time < self.now:
            raise SimulationError("event heap went backwards in time")
        self.now = time
        self._pending -= 1
        self._events_processed += 1
        if len(entry) == 4:
            fn = entry[2]
            args = entry[3]
        else:
            handle = entry[2]
            handle.fired = True
            fn = handle.fn
            args = handle.args
            handle.fn = None
            handle.args = ()
        try:
            fn(*args)
        except Exception as exc:
            if self.strict:
                raise
            self.failures.append(exc)

    def step(self) -> bool:
        """Run the next pending event. Returns ``False`` if none fired
        (every store was empty or held only cancelled entries)."""
        entry = self._next_entry(pop=True)
        if entry is None:
            return False
        self._fire(entry)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until every store drains, ``until`` is reached, or
        :meth:`stop` is called.

        ``until`` advances the clock to exactly ``until`` even if no event
        fires there, matching the common "simulate T seconds" usage.
        ``max_events`` counts only events that actually fired: draining
        lazily cancelled entries never consumes the budget.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        processed = 0
        # The loop below is `step()` (`_next_entry` + `_fire`) unrolled into
        # one frame: at ~100k+ events per run the two call frames per event
        # are the single largest fixed cost. The aliases are safe because
        # nothing rebinds these attributes mid-run (`_compact` mutates the
        # heap list in place).
        heap = self._heap
        queue = self._now_queue
        runq = self._run_queue
        wheel = self._wheel
        heappop = heapq.heappop
        try:
            while not self._stopped:
                # -- select: merged (time, seq) order across all stores.
                head = queue[0] if queue else None
                top = heap[0] if heap else None
                # Tuple comparison decides on (time, seq); seq is unique,
                # so the heterogeneous third elements are never compared.
                src = 0  # 0: now-queue, 1: heap, 2: run queue
                if top is not None and (head is None or top < head):
                    head = top
                    src = 1
                rtop = runq[0] if runq else None
                if rtop is not None and (head is None or rtop < head):
                    head = rtop
                    src = 2
                if wheel._due:
                    # A due slot may hold a timer ordered before `head`.
                    limit = wheel._next_due if head is None else head[0]
                    if wheel._next_due <= limit:
                        wheel.flush_due(limit)
                        continue
                if head is None:
                    break
                raw = True
                if src == 1:
                    raw = len(head) == 4
                    if not raw and head[2].cancelled:
                        heappop(heap)
                        self._cancelled_in_heap -= 1
                        continue
                elif src == 2:
                    raw = len(head) == 4
                    if not raw and head[2].cancelled:
                        runq.popleft()  # cancel already fixed the counters
                        continue
                if until is not None and head[0] > until:
                    break
                if src == 0:
                    queue.popleft()
                elif src == 1:
                    heappop(heap)
                else:
                    runq.popleft()
                # -- fire.
                time = head[0]
                if time < self.now:
                    raise SimulationError("event heap went backwards in time")
                self.now = time
                self._pending -= 1
                self._events_processed += 1
                if raw:
                    fn = head[2]
                    args = head[3]
                else:
                    handle = head[2]
                    handle.fired = True
                    fn = handle.fn
                    args = handle.args
                    handle.fn = None
                    handle.args = ()
                try:
                    fn(*args)
                except Exception as exc:
                    if self.strict:
                        raise
                    self.failures.append(exc)
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
                # -- drain: a same-timestamp run at the head of the run
                # queue fires in one pass, re-checking only that no other
                # store's head (all ordered after it by seq at equal time)
                # slipped in front. Callbacks may append to any store or
                # stop the clock mid-run; every peek below re-reads live
                # state, so the drain stays bit-exact with the full select.
                while runq and not self._stopped:
                    nxt = runq[0]
                    if (
                        nxt[0] != time
                        or (heap and heap[0] < nxt)
                        or (queue and queue[0] < nxt)
                        or wheel._next_due <= time
                    ):
                        break
                    if len(nxt) == 3:
                        handle = nxt[2]
                        if handle.cancelled:
                            runq.popleft()
                            continue
                        handle.fired = True
                        fn = handle.fn
                        args = handle.args
                        handle.fn = None
                        handle.args = ()
                    else:
                        fn = nxt[2]
                        args = nxt[3]
                    runq.popleft()
                    self._pending -= 1
                    self._events_processed += 1
                    try:
                        fn(*args)
                    except Exception as exc:
                        if self.strict:
                            raise
                        self.failures.append(exc)
                    processed += 1
                    if max_events is not None and processed >= max_events:
                        break
                if max_events is not None and processed >= max_events:
                    break
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop :meth:`run` after the current event completes."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of non-cancelled events still scheduled (O(1): maintained
        as a live counter instead of scanning the stores)."""
        return self._pending

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.6f}, pending={self.pending_events})"
