"""Run metrics: commits, latency, view changes, time series.

Measurement conventions (matching §7):

- *Throughput* counts each height once, at the moment the **first** correct
  replica commits it (transactions per second over a window, excluding
  warm-up).
- *Latency* is proposal-to-first-commit per block -- the consensus latency
  the paper plots.
- *Time series* bucket committed transactions per second, used for the
  reconfiguration plots (Figure 12).
- Every window is **half-open**, ``[lo, hi)``: an event landing exactly on
  a window edge belongs to the window that *starts* there. Adjacent
  windows (warm-up + measurement, consecutive time-series buckets)
  therefore partition the event stream -- nothing is counted twice and
  nothing is dropped, which is what lets a report split a run's totals
  exactly.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.consensus.block import Block
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class CommitRecord:
    """First commit of one height."""

    height: int
    block_hash: str
    time: float
    latency: float
    num_txs: int
    payload_size: int
    first_committer: int


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of pre-sorted values (p in [0, 100])."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile out of range: {p}")
    rank = max(1, math.ceil(p / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


#: Consensus-latency percentiles (the paper's plots stop at the body of
#: the distribution).
CONSENSUS_PERCENTILES: Tuple[float, ...] = (50, 95)

#: End-to-end client percentiles: tail latency is the product under
#: overload, so the workload engine reports through p99/p999.
E2E_PERCENTILES: Tuple[float, ...] = (50, 95, 99, 99.9)


def percentile_key(p: float) -> str:
    """Stable dict key for a percentile: 50 -> ``p50``, 99.9 -> ``p999``."""
    text = f"{p:g}".replace(".", "")
    return f"p{text}"


def latency_summary(
    values: Sequence[float],
    percentiles: Sequence[float] = CONSENSUS_PERCENTILES,
) -> Dict[str, float]:
    """One stats dict shared by every latency surface.

    ``values`` must be pre-sorted ascending. Empty input yields the same
    key set with zeros, so consumers (reports, schema validation, figure
    code) never branch on presence. The mean is fsum'd and clamped into
    [min, max] so float rounding cannot push it outside the data (three
    identical latencies summed naively can).
    """
    keys = [percentile_key(p) for p in percentiles]
    if not values:
        stats = {"mean": 0.0, "max": 0.0, "count": 0}
        stats.update({key: 0.0 for key in keys})
        return stats
    mean = min(max(math.fsum(values) / len(values), values[0]), values[-1])
    stats = {"mean": mean, "max": values[-1], "count": len(values)}
    stats.update(
        {key: percentile(values, p) for key, p in zip(keys, percentiles)}
    )
    return stats


class LatencyHistogram:
    """Log-bucketed (HDR-style) latency accounting in O(buckets) memory.

    The workload engine observes one latency per committed transaction; at
    the offered loads ``repro capacity`` sweeps (10^6-10^7 txs) the exact
    list-based path costs O(txs) memory plus an O(txs log txs) sort at
    report time. This histogram replaces the list on the *workload/e2e*
    surfaces only -- consensus surfaces keep the exact
    :func:`latency_summary` path so golden reports stay byte-identical.

    Buckets are geometric: bucket ``i`` spans ``[low * g**i, low * g**(i+1))``
    with ``g = 2 ** (1 / buckets_per_octave)``, stored sparsely (only
    occupied buckets take memory), so the footprint is bounded by the
    *dynamic range* of the data, never its volume: latencies spanning
    1 microsecond to ~3 hours fit in < 1100 buckets at the default
    resolution.

    Error model (tested by property test): a percentile is reported as its
    bucket's geometric midpoint clamped into the exact observed
    ``[min, max]``, so any reported percentile ``q`` satisfies
    ``exact / sqrt(g) < q <= exact * sqrt(g)`` for data at or above
    ``low`` -- a guaranteed relative error below
    ``2 ** (1 / (2 * buckets_per_octave)) - 1`` (~1.09% at the default
    ``buckets_per_octave=32``). ``count``/``min``/``max`` are exact;
    ``mean`` is exact up to float-accumulation rounding and clamped into
    ``[min, max]``. Values below ``low`` clamp into bucket 0 (sub-``low``
    resolution is not meaningful for simulated network latencies).

    Determinism: insertion-order independent by construction -- the state
    is a bag of bucket counts plus exact scalars, so summaries are
    identical across execution backends regardless of commit ordering.
    """

    __slots__ = (
        "low", "buckets_per_octave", "_scale", "_log_low",
        "counts", "count", "total", "min", "max",
    )

    def __init__(self, buckets_per_octave: int = 32, low: float = 1e-6):
        if buckets_per_octave < 1:
            raise ValueError(
                f"buckets_per_octave must be >= 1, got {buckets_per_octave}"
            )
        if low <= 0:
            raise ValueError(f"histogram floor must be positive, got {low}")
        self.low = low
        self.buckets_per_octave = buckets_per_octave
        self._scale = buckets_per_octave / math.log(2.0)
        self._log_low = math.log(low)
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    @property
    def relative_error(self) -> float:
        """Guaranteed bound on |reported - exact| / exact per percentile."""
        return 2.0 ** (1.0 / (2.0 * self.buckets_per_octave)) - 1.0

    def _index(self, value: float) -> int:
        if value <= self.low:
            return 0
        return int((math.log(value) - self._log_low) * self._scale)

    def _representative(self, index: int) -> float:
        """Geometric midpoint of a bucket, clamped into the exact range."""
        mid = self.low * 2.0 ** ((index + 0.5) / self.buckets_per_octave)
        return min(max(mid, self.min), self.max)

    def add(self, value: float) -> None:
        index = self._index(value)
        counts = self.counts
        counts[index] = counts.get(index, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add_many(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (same rank rule as :func:`percentile`)."""
        if not self.count:
            raise ValueError("percentile of empty histogram")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        rank = max(1, math.ceil(p / 100.0 * self.count))
        seen = 0
        for index in sorted(self.counts):
            seen += self.counts[index]
            if seen >= rank:
                return self._representative(index)
        return self.max  # pragma: no cover - unreachable (seen ends == count)

    def summary(
        self, percentiles: Sequence[float] = CONSENSUS_PERCENTILES
    ) -> Dict[str, float]:
        """Same shape as :func:`latency_summary` (zeros when empty)."""
        keys = [percentile_key(p) for p in percentiles]
        if not self.count:
            stats = {"mean": 0.0, "max": 0.0, "count": 0}
            stats.update({key: 0.0 for key in keys})
            return stats
        mean = min(max(self.total / self.count, self.min), self.max)
        stats = {"mean": mean, "max": self.max, "count": self.count}
        rank_targets = [
            (key, max(1, math.ceil(p / 100.0 * self.count)))
            for key, p in zip(keys, percentiles)
        ]
        seen = 0
        remaining = sorted(rank_targets, key=lambda item: item[1])
        position = 0
        for index in sorted(self.counts):
            seen += self.counts[index]
            while position < len(remaining) and remaining[position][1] <= seen:
                stats[remaining[position][0]] = self._representative(index)
                position += 1
            if position == len(remaining):
                break
        return stats

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyHistogram(count={self.count}, "
            f"buckets={len(self.counts)}, k={self.buckets_per_octave})"
        )


class Metrics:
    """Collector shared by every node of one deployment."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.first_commits: Dict[int, CommitRecord] = {}
        self.commits_per_node: Counter = Counter()
        self.view_changes: List[Tuple[float, int, int]] = []  # (time, node, view)
        self.commit_events: List[Tuple[float, int]] = []  # (time, num_txs)
        # Commit times alone, for bisect-based window slicing: simulated
        # time never goes backwards, so commit_events (and this shadow) are
        # nondecreasing by construction.
        self._commit_times: List[float] = []
        #: Callbacks fired on each height's *first* commit: f(record, block).
        self.commit_listeners: List = []

    # ------------------------------------------------------------------
    # Recording (called by protocol nodes)
    # ------------------------------------------------------------------
    def on_commit(self, node_id: int, block: Block, time: float) -> None:
        """Record a replica committing a block (first commit per height
        defines the global record and fires the listeners)."""
        self.commits_per_node[node_id] += 1
        if block.height in self.first_commits:
            return
        record = CommitRecord(
            height=block.height,
            block_hash=block.hash,
            time=time,
            latency=time - block.created_at,
            num_txs=block.num_txs,
            payload_size=block.payload_size,
            first_committer=node_id,
        )
        self.first_commits[block.height] = record
        self.commit_events.append((time, block.num_txs))
        self._commit_times.append(time)
        for listener in self.commit_listeners:
            listener(record, block)

    def on_view_change(self, node_id: int, view: int, time: float) -> None:
        """Record one replica advancing to ``view``."""
        self.view_changes.append((time, node_id, view))

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def committed_blocks(self) -> int:
        return len(self.first_commits)

    @property
    def max_view(self) -> int:
        if not self.view_changes:
            return 0
        return max(view for _, _, view in self.view_changes)

    def records(self) -> List[CommitRecord]:
        return [self.first_commits[h] for h in sorted(self.first_commits)]

    def _window(
        self, start: Optional[float], end: Optional[float]
    ) -> Tuple[float, float]:
        lo = 0.0 if start is None else start
        hi = self.sim.now if end is None else end
        return lo, hi

    def _window_slice(self, lo: float, hi: float) -> Tuple[int, int]:
        """Index range of commits inside half-open ``[lo, hi)``.

        ``commit_events`` is appended in nondecreasing time order, so the
        window is a contiguous slice found by bisection -- O(log k) instead
        of a linear scan per query (reports and figure generators window
        the same event list many times over).
        """
        times = self._commit_times
        return bisect_left(times, lo), bisect_left(times, hi)

    def throughput_txs(self, start: Optional[float] = None, end: Optional[float] = None) -> float:
        """Committed transactions per second over the half-open ``[start, end)``.

        A commit landing exactly at ``end`` belongs to the *next* window, so
        splitting a run at any instant partitions its transactions exactly
        (nothing double-counted by adjacent warm-up/measurement windows).
        """
        lo, hi = self._window(start, end)
        if hi <= lo:
            return 0.0
        first, last = self._window_slice(lo, hi)
        txs = sum(n for _, n in self.commit_events[first:last])
        return txs / (hi - lo)

    def throughput_blocks(self, start: Optional[float] = None, end: Optional[float] = None) -> float:
        lo, hi = self._window(start, end)
        if hi <= lo:
            return 0.0
        first, last = self._window_slice(lo, hi)
        return (last - first) / (hi - lo)

    def latencies(self, start: Optional[float] = None, end: Optional[float] = None) -> List[float]:
        lo, hi = self._window(start, end)
        return sorted(
            rec.latency for rec in self.first_commits.values() if lo <= rec.time < hi
        )

    def latency_stats(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> Dict[str, float]:
        """mean / p50 / p95 / max latency over a window (empty -> zeros)."""
        return latency_summary(self.latencies(start, end))

    def timeseries_txs(
        self, bucket: float = 1.0, end: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """(bucket_start, txs/s) series for recovery plots (Figure 12).

        Buckets are half-open ``[i*bucket, (i+1)*bucket)``. An event landing
        exactly on the horizon opens a new bucket -- the series grows instead
        of clamping the event into the last in-range bucket, which would
        inflate that bucket's rate.
        """
        if bucket <= 0:
            raise ValueError(f"non-positive bucket: {bucket}")
        horizon = self.sim.now if end is None else end
        buckets = int(math.ceil(horizon / bucket)) if horizon > 0 else 0
        series = [0.0] * buckets
        for time, txs in self.commit_events:
            index = int(time / bucket)
            while index >= len(series):
                series.append(0.0)
            series[index] += txs
        return [(i * bucket, total / bucket) for i, total in enumerate(series)]

    def commit_gap_after(self, time: float) -> Optional[float]:
        """Time from ``time`` to the next commit -- recovery time (§7.10)."""
        times = self._commit_times
        index = bisect_left(times, time)
        if index == len(times):
            return None
        return times[index] - time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Metrics(blocks={self.committed_blocks}, "
            f"view_changes={len(self.view_changes)})"
        )
