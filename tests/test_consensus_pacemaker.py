"""Unit tests for the pacemaker (§6 timeouts, §7.10 schedule)."""

import pytest

from repro.consensus import Pacemaker
from repro.errors import ConfigError
from repro.sim import Simulator


def make(sim, base=1.0, cap=10.0):
    fires = []
    pacemaker = Pacemaker(sim, base, lambda: fires.append(sim.now), cap=cap)
    return pacemaker, fires


def test_fires_after_base_timeout():
    sim = Simulator()
    pacemaker, fires = make(sim)
    pacemaker.start_view()
    sim.run(until=5.0)
    assert fires == [1.0]
    assert pacemaker.timeouts_fired == 1


def test_progress_resets_timer():
    sim = Simulator()
    pacemaker, fires = make(sim)
    pacemaker.start_view()
    sim.schedule(0.8, pacemaker.record_progress)
    sim.schedule(1.6, pacemaker.record_progress)
    sim.run(until=2.0)
    assert fires == []
    sim.run(until=3.0)
    assert fires == [pytest.approx(2.6)]


def test_doubling_schedule_matches_paper():
    """§7.10: 1.7, 3.4, 6.8, then capped at 10."""
    sim = Simulator()
    pacemaker, _ = make(sim, base=1.7, cap=10.0)
    observed = []
    for failures in range(6):
        pacemaker.consecutive_failures = failures
        observed.append(pacemaker.current_timeout())
    assert observed[:3] == [pytest.approx(1.7), pytest.approx(3.4), pytest.approx(6.8)]
    assert all(t == pytest.approx(6.8) for t in observed[3:])
    # after the doublings are exhausted the value stays at base * 4 (< cap);
    # with a larger base the cap binds:
    pacemaker2, _ = make(sim, base=4.0, cap=10.0)
    pacemaker2.consecutive_failures = 5
    assert pacemaker2.current_timeout() == pytest.approx(10.0)


def test_consecutive_failures_increase_on_fire():
    sim = Simulator()
    pacemaker, fires = make(sim, base=1.0, cap=100.0)

    def restart():
        pacemaker.start_view()

    pacemaker._on_timeout = lambda: (fires.append(sim.now), restart())
    pacemaker.start_view()
    sim.run(until=10.0)
    # fire at 1 (next timeout 2), at 3 (next 4), at 7 (next 4, capped by
    # doublings), at 11 > horizon
    assert fires == [pytest.approx(1.0), pytest.approx(3.0), pytest.approx(7.0)]


def test_progress_resets_failures():
    sim = Simulator()
    pacemaker, _ = make(sim)
    pacemaker.consecutive_failures = 2
    pacemaker.record_progress()
    assert pacemaker.consecutive_failures == 0
    assert pacemaker.current_timeout() == pytest.approx(1.0)


def test_cap_never_undercuts_base():
    sim = Simulator()
    pacemaker, _ = make(sim, base=20.0, cap=10.0)
    assert pacemaker.current_timeout() == pytest.approx(20.0)


def test_stop_disarms():
    sim = Simulator()
    pacemaker, fires = make(sim)
    pacemaker.start_view()
    pacemaker.stop()
    sim.run(until=5.0)
    assert fires == []
    assert not pacemaker.armed


def test_invalid_base_rejected():
    sim = Simulator()
    with pytest.raises(ConfigError):
        Pacemaker(sim, 0.0, lambda: None)
