"""Restartable one-shot timers.

The consensus pacemaker arms a timer per view; receiving progress restarts
it, and expiry triggers a view change. :class:`Timer` wraps the simulator's
timeout handles with restart/cancel semantics and guards against stale
callbacks from superseded arms.

Timers schedule through :meth:`Simulator.schedule_timeout`, so they park
in the timer wheel: the dominant restart pattern (arm, progress, cancel,
re-arm -- the deadline almost never fires) costs O(1) dict traffic per
cycle instead of accumulating lazily-cancelled event-heap entries.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.wheel import TimeoutHandle


class Timer:
    """A one-shot timer that can be cancelled and re-armed.

    The callback receives no arguments; bind context with a closure or
    ``functools.partial``. Restarting an armed timer cancels the previous
    deadline atomically (no double fire).
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any], name: str = "timer"):
        self.sim = sim
        self.callback = callback
        self.name = name
        self._handle: Optional[TimeoutHandle] = None
        self._deadline: Optional[float] = None
        self.fire_count = 0

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative timer delay: {delay}")
        self.cancel()
        self._deadline = self.sim.now + delay
        self._handle = self.sim.schedule_timeout(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer; no-op if not armed."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
            self._deadline = None

    def _fire(self) -> None:
        self._handle = None
        self._deadline = None
        self.fire_count += 1
        self.callback()

    @property
    def armed(self) -> bool:
        return self._handle is not None

    @property
    def deadline(self) -> Optional[float]:
        """Absolute simulated time of the next fire, or ``None`` if disarmed."""
        return self._deadline

    @property
    def remaining(self) -> Optional[float]:
        """Seconds until fire, or ``None`` if disarmed."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.armed:
            return f"Timer({self.name!r}, fires_at={self._deadline:.6f})"
        return f"Timer({self.name!r}, disarmed)"
