"""BLS-style non-interactive multisignatures (Kauri and HotStuff-bls, §6).

Each internal node aggregates its children's shares into a single
aggregated vote (§3.3.2): O(m) aggregation work per node, O(1) aggregate
size and verification. The wire representation is modeled as one 48-byte
aggregate plus a signer bitmap per distinct value; the in-memory object
additionally carries per-signer tags so that ⊕ is idempotent under
arbitrary overlaps and forged tags are detectable -- exactly the behaviour
of real BLS multisignatures with rogue-key protection (§2 cites the
proof-of-possession requirement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Mapping, Tuple

from repro.crypto.collection import Collection
from repro.crypto.costs import CryptoCostModel, bitmap_size
from repro.crypto.keys import KeyPair, Pki, canonical_digest
from repro.crypto.signature import SignatureScheme
from repro.errors import CryptoError


@dataclass(frozen=True)
class BlsShare:
    """One process's multisignature share over one value."""

    signer: int
    value: Any
    tag: bytes


class BlsCollection(Collection):
    """Per-value aggregates: value -> {signer: tag}; ⊕ merges signer maps."""

    __slots__ = ("_pki", "_costs", "_byvalue", "_valid_cache")

    def __init__(
        self,
        pki: Pki,
        costs: CryptoCostModel,
        byvalue: Mapping[Any, Mapping[int, bytes]] = None,
    ):
        self._pki = pki
        self._costs = costs
        self._byvalue: Dict[Any, Dict[int, bytes]] = {
            value: dict(signers) for value, signers in (byvalue or {}).items()
        }
        self._valid_cache: Dict[Any, FrozenSet[int]] = {}

    # ------------------------------------------------------------------
    def combine(self, other: Collection) -> "BlsCollection":
        if not isinstance(other, BlsCollection):
            raise CryptoError(
                f"cannot combine bls collection with {type(other).__name__}"
            )
        if other._pki is not self._pki:
            raise CryptoError("cannot combine collections from different PKIs")
        merged: Dict[Any, Dict[int, bytes]] = {
            value: dict(signers) for value, signers in self._byvalue.items()
        }
        for value, signers in other._byvalue.items():
            slot = merged.setdefault(value, {})
            for signer, tag in signers.items():
                # Conflicting tags for the same (signer, value): keep the
                # valid one if any; a bad tag must never shadow a good one.
                existing = slot.get(signer)
                if existing is None or existing == tag:
                    slot[signer] = tag
                else:
                    digest = canonical_digest(value)
                    if self._pki.verify_mac(signer, digest, tag):
                        slot[signer] = tag
        return BlsCollection(self._pki, self._costs, merged)

    def has(self, value: Any, threshold: int) -> bool:
        return len(self.signers_for(value)) >= threshold

    def signers_for(self, value: Any) -> FrozenSet[int]:
        cached = self._valid_cache.get(value)
        if cached is not None:
            return cached
        signers = self._byvalue.get(value, {})
        digest = canonical_digest(value)
        valid = frozenset(
            signer
            for signer, tag in signers.items()
            if self._pki.verify_mac(signer, digest, tag)
        )
        self._valid_cache[value] = valid
        return valid

    def cardinality(self) -> int:
        return sum(len(signers) for signers in self._byvalue.values())

    def values(self) -> FrozenSet[Any]:
        return frozenset(self._byvalue)

    def wire_size(self) -> int:
        """One constant-size aggregate + signer bitmap per distinct value."""
        per_value = self._costs.aggregate_base_size + bitmap_size(self._pki.n)
        return 8 + per_value * len(self._byvalue)

    # ------------------------------------------------------------------
    def _frozen(self) -> FrozenSet[Tuple[Any, int, bytes]]:
        return frozenset(
            (value, signer, tag)
            for value, signers in self._byvalue.items()
            for signer, tag in signers.items()
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BlsCollection) and self._frozen() == other._frozen()

    def __hash__(self) -> int:
        return hash(self._frozen())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlsCollection({self.cardinality()} shares, {len(self._byvalue)} values)"


class BlsScheme(SignatureScheme):
    """Scheme factory for BLS-style multisignature collections."""

    def new(self, keypair: KeyPair, value: Any) -> BlsCollection:
        tag = keypair.mac(canonical_digest(value))
        return BlsCollection(self.pki, self.costs, {value: {keypair.node_id: tag}})

    def empty(self) -> BlsCollection:
        return BlsCollection(self.pki, self.costs)
