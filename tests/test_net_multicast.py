"""Multicast equivalence: the batched fan-out is the sequential loop, bit
for bit.

`Network.multicast` promises to be indistinguishable from
`[send(src, dst, ...) for dst in dsts]` in every simulated observable:
delivery times and ordering, NIC lane busy intervals and counters, fault
decisions, observer event streams, and the full RunReport. These are
property tests over seeds, fanouts, lanes > 1 and crash/omission fault
configurations; `network.multicast_enabled = False` forces the sequential
reference path through the very same call sites.

Also covers the two cache-hygiene satellites on the fabric:
`Network.invalidate_links` (reconfiguration swaps the shaper) and
`Endpoint.purge` pruning dead waiters.
"""

import pytest

from repro import Cluster
from repro.config import NetworkParams
from repro.net.netem import HomogeneousNetem
from repro.net.network import Network
from repro.net.trace import MessageTrace
from repro.obs.report import build_report, report_json
from repro.sim import Simulator
from repro.sim.process import Signal, spawn
from repro.topology.reconfig import swap_scenario

# ---------------------------------------------------------------------------
# Fabric-level equivalence
# ---------------------------------------------------------------------------

FAULT_CONFIGS = {
    "none": lambda faults: None,
    "crash-src": lambda faults: faults.crash_at(0, 0.004),
    "crash-dst": lambda faults: faults.crash_at(3, 0.003),
    "omission": lambda faults: (faults.omit_edge(0, 2), faults.omit_edge(1, 4)),
}


def _drive(multicast_enabled, *, fanout, lanes, fault, seed):
    """One deterministic traffic pattern; returns comparable state."""
    sim = Simulator(seed=seed)
    params = NetworkParams(name="t", rtt=0.004, bandwidth_bps=25_000_000.0)
    net = Network(sim, HomogeneousNetem(params), uplink_lanes=lanes)
    net.multicast_enabled = multicast_enabled
    trace = MessageTrace()
    net.observers.append(trace)
    n = fanout + 2
    for node in range(n):
        net.register(node)
    FAULT_CONFIGS[fault](net.faults)

    rng_offsets = [0.0011 * (i + seed % 3) for i in range(4)]

    def traffic():
        for round_no, offset in enumerate(rng_offsets):
            # Overlapping fan-outs from two sources, so batches queue
            # behind each other and (with lanes > 1) interleave lanes.
            net.multicast(0, tuple(range(1, fanout + 1)), ("blk", round_no),
                          payload=round_no, size=1000 + 17 * round_no)
            net.multicast(1, tuple(range(2, fanout + 2)), ("vote", round_no),
                          payload=None, size=96)
            yield from _sleep(sim, offset)

    spawn(sim, traffic(), name="traffic")
    sim.run()
    return {
        "events": [
            (e.time, e.kind, e.src, e.dst, e.tag, e.size) for e in trace.events
        ],
        "events_processed": sim.events_processed,
        "now": sim.now,
        "messages": (net.messages_sent, net.messages_delivered),
        "dropped": net.faults.dropped_messages,
        "nics": {
            node: (
                nic._lane_busy_until,
                nic._lane_intervals,
                nic._bytes_log,
                nic.bytes_sent,
                nic.messages_sent,
                nic.total_queueing_delay,
                nic.total_tx_time,
                nic.max_backlog,
                nic.max_queue_depth,
            )
            for node, nic in net.nics.items()
        },
        "endpoints": {
            node: (ep.messages_delivered, ep.bytes_delivered, ep.queued_messages)
            for node, ep in net.endpoints.items()
        },
    }


def _sleep(sim, duration):
    from repro.sim.process import Sleep

    yield Sleep(duration)


@pytest.mark.parametrize("fault", sorted(FAULT_CONFIGS))
@pytest.mark.parametrize("lanes", [1, 3])
@pytest.mark.parametrize("fanout", [1, 4, 10])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_multicast_matches_sequential_sends(fanout, lanes, fault, seed):
    batched = _drive(True, fanout=fanout, lanes=lanes, fault=fault, seed=seed)
    sequential = _drive(False, fanout=fanout, lanes=lanes, fault=fault, seed=seed)
    assert batched == sequential


def test_self_send_batches_fall_back(self=None):
    """A destination list containing the source takes the sequential path
    (self-sends deliver synchronously) and still delivers everything."""
    sim = Simulator()
    net = Network(sim, HomogeneousNetem(NetworkParams("t", rtt=0.002, bandwidth_bps=1e9)))
    for node in range(4):
        net.register(node)
    msgs = net.multicast(0, (1, 0, 2), "t", "x", 10)
    sim.run()
    assert [m.dst for m in msgs] == [1, 0, 2]
    assert net.messages_delivered == 3
    assert net.endpoints[0].messages_delivered == 1


def test_empty_destination_list_is_noop():
    sim = Simulator()
    net = Network(sim, HomogeneousNetem(NetworkParams("t", rtt=0.002, bandwidth_bps=1e9)))
    net.register(0)
    assert net.multicast(0, (), "t", "x", 10) == []
    assert net.messages_sent == 0 and sim.pending_events == 0


# ---------------------------------------------------------------------------
# End-to-end equivalence: full consensus runs, byte-identical reports
# ---------------------------------------------------------------------------

E2E_CONFIGS = [
    # (mode, n, lanes, crashes)
    ("kauri", 13, 1, ()),
    ("kauri", 13, 2, ()),
    ("kauri", 21, 1, ((5, 3.0),)),
    ("hotstuff-bls", 13, 1, ()),
]


def _run_cluster(multicast_enabled, mode, n, lanes, crashes, seed):
    cluster = Cluster(
        n=n, mode=mode, scenario="national", seed=seed, crashes=crashes,
        uplink_lanes=lanes, observability=True,
    )
    cluster.network.multicast_enabled = multicast_enabled
    cluster.start()
    cluster.run(duration=12.0, max_commits=6)
    cluster.check_agreement()
    report = build_report(cluster, start=0.0, end=cluster.sim.now)
    return cluster, report_json(report)


@pytest.mark.parametrize("mode,n,lanes,crashes", E2E_CONFIGS)
@pytest.mark.parametrize("seed", [0, 3])
def test_end_to_end_runs_are_byte_identical(mode, n, lanes, crashes, seed):
    a, report_a = _run_cluster(True, mode, n, lanes, crashes, seed)
    b, report_b = _run_cluster(False, mode, n, lanes, crashes, seed)
    # The RunReport embeds commit times, throughput, latency percentiles,
    # per-NIC busy fractions and queue high-waters, fault counters and the
    # simulator's own event count -- byte equality here is the whole claim.
    assert report_a == report_b
    assert a.sim.events_processed == b.sim.events_processed
    assert a.sim.now == b.sim.now
    assert a.metrics.committed_blocks == b.metrics.committed_blocks


# ---------------------------------------------------------------------------
# Satellites: link-param invalidation and purge pruning dead waiters
# ---------------------------------------------------------------------------

class _PairKeyedNetem:
    """A shaper without ``link_key``: the fabric memoises per (src, dst)."""

    def __init__(self, params):
        self.params = params

    def params_between(self, src, dst):
        return self.params


class TestInvalidateLinks:
    def _warm(self, netem=None):
        sim = Simulator()
        if netem is None:
            netem = HomogeneousNetem(
                NetworkParams("slow", rtt=0.1, bandwidth_bps=1_000_000.0)
            )
        net = Network(sim, netem)
        for node in range(4):
            net.register(node)
        for dst in (1, 2, 3):
            net.send(0, dst, "warm", None, 10)
        sim.run()
        return sim, net

    def test_class_keyed_memo_stays_one_entry(self):
        """A homogeneous shaper has one link class: three warmed pairs
        share a single memo entry (the N=1000 flyweight)."""
        _sim, net = self._warm()
        assert len(net._params_cache) == 1
        assert net.invalidate_links() == 1
        assert not net._params_cache

    def test_filtered_eviction_on_class_keys_clears_conservatively(self):
        """Class keys cannot be matched back to pairs, so a filtered
        eviction drops the whole memo rather than risk a stale entry."""
        _sim, net = self._warm()
        assert net.invalidate_links(dst=2) == 1
        assert not net._params_cache

    def test_filtered_eviction_on_pair_keys(self):
        _sim, net = self._warm(
            _PairKeyedNetem(
                NetworkParams("slow", rtt=0.1, bandwidth_bps=1_000_000.0)
            )
        )
        assert len(net._params_cache) == 3
        assert net.invalidate_links(dst=2) == 1
        assert (0, 2) not in net._params_cache
        assert net.invalidate_links(src=0) == 2
        assert net.invalidate_links(src=0) == 0

    def test_swap_scenario_reprices_links(self):
        """After swap_scenario, traffic is priced on the new shaper -- the
        stale-cache bug this satellite exists to prevent."""
        sim, net = self._warm()
        arrivals = []

        def receiver():
            msg = yield from net.endpoint(1).receive("after")
            arrivals.append(sim.now - msg.sent_at)

        spawn(sim, receiver())
        evicted = swap_scenario(
            net, HomogeneousNetem(NetworkParams("fast", rtt=0.002, bandwidth_bps=1e9))
        )
        assert evicted == 1
        net.send(0, 1, "after", None, 1000)
        sim.run()
        # 1064 bytes at 1 Gb/s is ~8.5us; on the stale 1 Mb/s params the
        # serialization alone would be ~8.5ms.
        assert arrivals[0] == pytest.approx(0.001 + 1064 * 8 / 1e9)

    def test_direct_shaper_swap_rebinds_automatically(self):
        """Swapping ``network.netem`` without calling invalidate_links
        (the client harness does this) must still reprice traffic: the
        fabric rebinds on the next send."""
        sim, net = self._warm()
        arrivals = []

        def receiver():
            msg = yield from net.endpoint(1).receive("after")
            arrivals.append(sim.now - msg.sent_at)

        spawn(sim, receiver())
        net.netem = HomogeneousNetem(
            NetworkParams("fast", rtt=0.002, bandwidth_bps=1e9)
        )
        net.send(0, 1, "after", None, 1000)
        sim.run()
        assert arrivals[0] == pytest.approx(0.001 + 1064 * 8 / 1e9)


class TestPurgePrunesDeadWaiters:
    def test_dead_waiters_dropped_live_kept(self):
        """Purging a tag prefix prunes waiter entries whose signal already
        resolved (the same dead entries ``deliver`` prunes in its scan) but
        leaves live waiters alone -- their tasks are cancelled separately.
        """
        sim = Simulator()
        net = Network(
            sim,
            HomogeneousNetem(NetworkParams("t", rtt=0.002, bandwidth_bps=1e9)),
        )
        endpoint = net.register(1)
        net.register(0)

        def receiver(tag):
            yield from endpoint.receive(tag)

        spawn(sim, receiver(("view", 1, "vote")))
        spawn(sim, receiver(("view", 2, "vote")))
        sim.run(until=0.0005)  # both waiters registered and live
        # A dead entry on the stale tag, exactly as the deliver/cancel race
        # leaves one: its signal resolved, but the owning coroutine has not
        # yet run the ``finally`` that would remove it.
        dead = Signal()
        dead.fire(None)
        endpoint._waiters[("view", 1, "vote")].append((None, dead))
        assert len(endpoint._waiters[("view", 1, "vote")]) == 2

        purged = endpoint.purge(lambda tag: tag[1] < 2)
        assert purged == 0  # no queued messages, only the dead waiter
        # Dead entry pruned; the live waiter on the purged tag is kept.
        assert len(endpoint._waiters[("view", 1, "vote")]) == 1
        assert not endpoint._waiters[("view", 1, "vote")][0][1].fired
        assert ("view", 2, "vote") in endpoint._waiters  # untouched tag

    def test_fully_dead_tag_is_deleted(self):
        sim = Simulator()
        net = Network(
            sim,
            HomogeneousNetem(NetworkParams("t", rtt=0.002, bandwidth_bps=1e9)),
        )
        endpoint = net.register(1)
        dead = Signal()
        dead.fire(None)
        endpoint._waiters[("view", 0, "vote")] = [(None, dead)]
        endpoint.purge(lambda tag: True)
        assert ("view", 0, "vote") not in endpoint._waiters
