"""Back-compat facade over the refactored SMR core.

The monolithic ``ProtocolNode`` was split into the protocol-agnostic
:class:`~repro.core.smr.SmrNode` base and pluggable
:class:`~repro.consensus.protocol.Protocol` strategies (see those modules).
This module keeps the historical import surface alive: ``ProtocolNode`` is
the ``SmrNode`` with the strategy taken from the mode (which is what the
old class hard-coded), and the private tag helpers re-export the shared
vocabulary from :mod:`repro.consensus.tags`.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.consensus import tags
from repro.consensus.protocol import VOTE_PHASES
from repro.core.perfmodel import PROPOSAL_OVERHEAD
from repro.core.smr import CLIENT_TX_TAG, NEWVIEW_OVERHEAD, SmrNode

__all__ = [
    "CLIENT_TX_TAG",
    "NEWVIEW_OVERHEAD",
    "PROPOSAL_OVERHEAD",
    "VOTE_PHASES",
    "ProtocolNode",
]


def _prop_tag(view: int) -> Tuple:
    return tags.prop_tag(view)


def _vote_tag(view: int, height: int, phase) -> Tuple:
    return tags.vote_tag(view, height, phase)


def _qc_tag(view: int, height: int, phase) -> Tuple:
    return tags.qc_tag(view, height, phase)


def _newview_tag(view: int) -> Tuple:
    return tags.newview_tag(view)


def _is_stale_tag(tag: Any, view: int) -> bool:
    return tags.is_stale_tag(tag, view)


class ProtocolNode(SmrNode):
    """One replica of the deployment (historical name).

    Byzantine behaviours in :mod:`repro.consensus.byzantine` subclass this
    and override the mechanism hooks (``_make_vote``,
    ``_disseminate_proposal``, ``_build_comm``); the strategy keeps calling
    through them regardless of which protocol is plugged in.
    """

    __slots__ = ()
