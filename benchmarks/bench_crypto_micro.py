"""Micro-benchmarks of the cryptographic-collection substrate.

Unlike the simulation benches (which measure *simulated* time), these
measure real wall-clock cost of the Python collection operations, and
verify the asymmetry the paper's §3.3.2 argument rests on at the data
-structure level: aggregated collections stay O(1)-sized on the wire and
O(valid-values) to verify, while signature lists grow with the quorum.
"""

import pytest

from repro.consensus.vote import Phase, vote_value
from repro.crypto import Pki, make_scheme

N = 400
PKI = Pki(n=N)
QUORUM = 267
VALUE = vote_value(Phase.PREPARE, 0, 1, "block-hash")


def build_quorum(kind):
    scheme = make_scheme(kind, PKI)
    collection = scheme.empty()
    for signer in range(QUORUM):
        collection = collection | scheme.new(PKI.keypair(signer), VALUE)
    return scheme, collection


@pytest.mark.parametrize("kind", ["secp", "bls"])
def test_micro_sign(benchmark, kind):
    scheme = make_scheme(kind, PKI)
    keypair = PKI.keypair(0)
    benchmark(lambda: scheme.new(keypair, VALUE))


@pytest.mark.parametrize("kind", ["secp", "bls"])
def test_micro_combine_fanout(benchmark, kind):
    """One internal node's merge of 20 child contributions (N=400 fanout)."""
    scheme = make_scheme(kind, PKI)
    children = []
    base = 0
    for child in range(20):
        partial = scheme.empty()
        for signer in range(base, base + 13):
            partial = partial | scheme.new(PKI.keypair(signer), VALUE)
        children.append(partial)
        base += 13

    def merge():
        out = scheme.empty()
        for partial in children:
            out = out | partial
        return out

    result = benchmark(merge)
    assert result.count_for(VALUE) == 260


@pytest.mark.parametrize("kind", ["secp", "bls"])
def test_micro_quorum_check(benchmark, kind):
    """Validating a full quorum certificate (cold cache each round)."""
    scheme, collection = build_quorum(kind)

    def check():
        # clear the memoised verification to measure real validation;
        # bitmap-backed bls has no per-collection memo to clear -- its
        # quorum check *is* the popcount being measured.
        cache = getattr(collection, "_valid_cache", None)
        if cache is not None:
            cache.clear()
        return collection.has(VALUE, QUORUM)

    assert benchmark(check)


def test_wire_size_asymmetry():
    _, secp_coll = build_quorum("secp")
    _, bls_coll = build_quorum("bls")
    # §3.3.2: the aggregate's wire size is constant and tiny; the list's is
    # proportional to the quorum
    assert bls_coll.wire_size() < 200
    assert secp_coll.wire_size() > QUORUM * 60
