"""RunReport: one JSON document saying where a run's simulated time went.

Joins the windowed resource accounting (:class:`~repro.sim.cpu.Cpu`,
:class:`~repro.net.nic.Nic`), the per-instance phase spans
(:class:`~repro.obs.recorder.PhaseRecorder`) and the commit metrics
(:class:`~repro.runtime.metrics.Metrics`) over one half-open measurement
window into the paper's evaluation vocabulary:

- per-node CPU utilization with saturation flags (utilization >= threshold
  over the window -- the red-circle convention of Fig. 6);
- per-NIC bytes, busy fractions, backlog and queue-depth high-water marks,
  plus the top-k hottest NICs;
- per-round dissemination / aggregation / wait spans (the measured
  analogue of §4.3's t_s / t_p / t_r);
- pacemaker, view-change and fault-injector counters.

Reports are deterministic: every number is a function of the simulation
(no wall clock, no dict-order dependence), floats are rounded to a fixed
precision, and :func:`report_json` serializes with sorted keys -- the same
spec always yields byte-identical JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.recorder import SPAN_KINDS

#: Bump when the report layout changes; the schema file tracks this.
REPORT_SCHEMA_VERSION = 1

#: Checked-in structural schema (validated in CI against every artifact).
SCHEMA_PATH = Path(__file__).with_name("run_report.schema.json")

#: Decimal places kept for every float in a report. Plenty for simulated
#: seconds/fractions while keeping the JSON stable and compact.
FLOAT_DECIMALS = 9


def _rounded(value: Any) -> Any:
    """Recursively round floats so serialized reports are stable."""
    if isinstance(value, float):
        return round(value, FLOAT_DECIMALS)
    if isinstance(value, dict):
        return {key: _rounded(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_rounded(item) for item in value]
    return value


def build_report(
    cluster: Any,
    start: Optional[float] = None,
    end: Optional[float] = None,
    saturation_threshold: float = 0.95,
    top_k_nics: int = 5,
) -> Dict[str, Any]:
    """Assemble the RunReport for ``cluster`` over ``[start, end)``.

    ``start`` defaults to 0 (whole run), ``end`` to the current simulated
    time. Call after :meth:`~repro.runtime.cluster.Cluster.run` returns.
    """
    sim = cluster.sim
    lo = 0.0 if start is None else start
    hi = sim.now if end is None else end
    window = max(hi - lo, 0.0)
    metrics = cluster.metrics
    recorders = getattr(cluster, "recorders", {})

    nodes: List[Dict[str, Any]] = []
    saturated: List[int] = []
    nic_heat: List[Dict[str, Any]] = []
    for node in cluster.nodes:
        node_id = node.node_id
        cpu = node.cpu
        nic = cluster.network.nic(node_id)
        endpoint = cluster.network.endpoint(node_id)
        cpu_utilization = cpu.utilization(since=lo, until=hi)
        cpu_saturated = cpu_utilization >= saturation_threshold
        if cpu_saturated:
            saturated.append(node_id)
        nic_row = {
            "bytes_sent": nic.bytes_sent,
            "bytes_in_window": nic.bytes_in(lo, hi),
            "busy_fraction": nic.utilization(since=lo, until=hi),
            "max_backlog_s": nic.max_backlog,
            "max_queue_depth": nic.max_queue_depth,
            "messages_sent": nic.messages_sent,
        }
        nic_heat.append({"id": node_id, **nic_row})
        pacemaker = node.pacemaker
        entry: Dict[str, Any] = {
            "id": node_id,
            "crashed": node_id in cluster.faults.crashed,
            "cpu": {
                "utilization": cpu_utilization,
                "busy_in_window": cpu.busy_in(lo, hi),
                "busy_time": cpu.busy_time,
                "jobs_completed": cpu.jobs_completed,
                "jobs_cancelled": cpu.jobs_cancelled,
                "saturated": cpu_saturated,
            },
            "nic": nic_row,
            "endpoint": {
                "messages_delivered": endpoint.messages_delivered,
                "max_queued": endpoint.max_queued,
            },
            "pacemaker": {
                "timeouts_fired": 0 if pacemaker is None else pacemaker.timeouts_fired,
            },
            "instance_failures": node.instance_failures,
        }
        recorder = recorders.get(node_id)
        if recorder is not None:
            entry["phases"] = recorder.summary(lo, hi)
        nodes.append(entry)

    # Hottest NICs by traffic actually carried inside the window; node id
    # breaks ties so the ordering (and thus the JSON) is deterministic.
    nic_heat.sort(key=lambda row: (-row["bytes_in_window"], row["id"]))

    root = cluster.policy.leader_of(0)
    rounds: List[Dict[str, Any]] = []
    root_recorder = recorders.get(root)
    if root_recorder is not None:
        for rec in root_recorder.instances(lo, hi):
            rounds.append(
                {
                    "height": rec["height"],
                    "node": root,
                    "start": rec["start"],
                    "end": rec["end"],
                    "decided": rec["decided"],
                    **{kind: rec[kind] for kind in SPAN_KINDS},
                }
            )

    report: Dict[str, Any] = {
        "schema": REPORT_SCHEMA_VERSION,
        "run": {
            "mode": cluster.mode.name,
            "scenario": getattr(cluster.scenario, "name", str(cluster.scenario)),
            "n": cluster.n,
            "simulated_seconds": sim.now,
            "events_processed": sim.events_processed,
        },
        "window": {"start": lo, "end": hi, "duration": window},
        "totals": {
            "committed_blocks": metrics.committed_blocks,
            "throughput_txs": metrics.throughput_txs(lo, hi),
            "throughput_blocks": metrics.throughput_blocks(lo, hi),
            "latency": metrics.latency_stats(lo, hi),
            "view_changes": len(metrics.view_changes),
            "max_view": metrics.max_view,
            "messages_sent": cluster.network.messages_sent,
            "messages_delivered": cluster.network.messages_delivered,
            "instance_failures": sum(n.instance_failures for n in cluster.nodes),
        },
        "saturation": {
            "threshold": saturation_threshold,
            "cpu_saturated": bool(saturated),
            "saturated_nodes": saturated,
            "leader": root,
            "leader_cpu_utilization": cluster.nodes[root].cpu.utilization(
                since=lo, until=hi
            ),
        },
        "nodes": nodes,
        "hot_nics": nic_heat[: max(top_k_nics, 0)],
        "rounds": rounds,
        "faults": {
            "dropped_messages": cluster.faults.dropped_messages,
            "crashed": sorted(cluster.faults.crashed),
            "byzantine": sorted(cluster.faults.byzantine),
        },
    }
    # Fast-path protocols only: reports of the six classic modes must stay
    # byte-identical (the golden tests pin them), so the section is
    # strictly conditional.
    if getattr(cluster.mode, "protocol", None) == "kudzu":
        report["fast_path"] = {
            "fast_commits": sum(
                getattr(n, "fast_commits", 0) for n in cluster.nodes
            ),
            "fast_fallbacks": sum(
                getattr(n, "fast_fallbacks", 0) for n in cluster.nodes
            ),
        }
    # Workload-engine runs only (same byte-identity rule as fast_path):
    # a WorkloadHarness registers itself on the cluster; plain runs have
    # no such attribute and their reports are unchanged.
    workload_harness = getattr(cluster, "workload_harness", None)
    if workload_harness is not None:
        report["workload"] = workload_harness.summary()
    return _rounded(report)


def report_json(report: Dict[str, Any]) -> str:
    """Canonical serialization: sorted keys, two-space indent, newline-
    terminated -- byte-identical for identical reports."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


# ---------------------------------------------------------------------------
# Schema validation (stdlib-only subset of JSON Schema)
# ---------------------------------------------------------------------------
def load_schema(path: Optional[Path] = None) -> Dict[str, Any]:
    with open(path or SCHEMA_PATH) as fh:
        return json.load(fh)


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    "null": type(None),
}


def _check(value: Any, schema: Dict[str, Any], where: str, problems: List[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        ok = False
        for name in allowed:
            if name == "number":
                ok = isinstance(value, (int, float)) and not isinstance(value, bool)
            elif name == "integer":
                ok = isinstance(value, int) and not isinstance(value, bool)
            else:
                ok = isinstance(value, _TYPES[name])
            if ok:
                break
        if not ok:
            problems.append(
                f"{where}: expected {expected}, got {type(value).__name__}"
            )
            return
    if isinstance(value, dict):
        for field in schema.get("required", []):
            if field not in value:
                problems.append(f"{where}: missing required field {field!r}")
        for field, sub in schema.get("properties", {}).items():
            if field in value:
                _check(value[field], sub, f"{where}.{field}", problems)
    elif isinstance(value, list):
        items = schema.get("items")
        if items is not None:
            for index, item in enumerate(value):
                _check(item, items, f"{where}[{index}]", problems)


def validate_report(
    report: Dict[str, Any], schema: Optional[Dict[str, Any]] = None
) -> List[str]:
    """Structural validation against the checked-in schema.

    Returns a list of human-readable problems (empty = valid). Implements
    the subset of JSON Schema the report schema uses -- ``type`` (including
    union lists), ``required``, ``properties``, ``items`` -- with the
    standard library only.
    """
    problems: List[str] = []
    _check(report, schema or load_schema(), "report", problems)
    if not problems and report.get("schema") != REPORT_SCHEMA_VERSION:
        problems.append(
            f"report: schema version {report.get('schema')!r} != "
            f"{REPORT_SCHEMA_VERSION}"
        )
    return problems
