"""Tests for message tracing and protocol-flow assertions."""

import pytest

from repro import Cluster
from repro.net.trace import MessageTrace


def traced_cluster(**kwargs):
    cluster = Cluster(**kwargs)
    trace = MessageTrace()
    cluster.network.observers.append(trace)
    return cluster, trace


class TestMessageTrace:
    def test_counts_and_bytes(self):
        cluster, trace = traced_cluster(n=7, mode="kauri", scenario="national")
        cluster.start()
        cluster.run(duration=3.0)
        summary = trace.summary()
        assert summary["prop"]["sent"] > 0
        assert summary["vote"]["sent"] > 0
        assert summary["qc"]["sent"] > 0
        assert summary["prop"]["bytes"] > summary["vote"]["bytes"]
        assert len(trace) > 0

    def test_drop_events_recorded(self):
        cluster, trace = traced_cluster(n=7, mode="kauri", scenario="national")
        cluster.crash_at(3, 1.0)
        cluster.start()
        cluster.run(duration=5.0)
        dropped = sum(
            counts["dropped"] for counts in trace.summary().values()
        )
        assert dropped > 0

    def test_ring_buffer_bounded(self):
        cluster, _ = traced_cluster(n=7, mode="kauri", scenario="national")
        small = MessageTrace(capacity=10)
        cluster.network.observers.append(small)
        cluster.start()
        cluster.run(duration=3.0)
        assert len(small) == 10

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MessageTrace(capacity=0)


class TestProtocolFlowShape:
    def test_proposals_flow_level_by_level(self):
        """Algorithm 2: each proposal send goes parent -> child, and a
        node forwards a height only after receiving it."""
        cluster, trace = traced_cluster(n=13, mode="kauri", scenario="national")
        tree = cluster.policy.configuration(0)
        cluster.start()
        cluster.run(duration=2.0)
        for event in trace.sends("prop"):
            assert tree.parent(event.dst) == event.src

    def test_votes_flow_child_to_parent(self):
        """Algorithm 3: vote aggregates travel strictly upward."""
        cluster, trace = traced_cluster(n=13, mode="kauri", scenario="national")
        tree = cluster.policy.configuration(0)
        cluster.start()
        cluster.run(duration=2.0)
        vote_sends = trace.sends("vote")
        assert vote_sends
        for event in vote_sends:
            assert tree.parent(event.src) == event.dst

    def test_leaf_delivery_lags_internal_delivery(self):
        """Dissemination reaches depth-1 nodes before depth-2 nodes."""
        cluster, trace = traced_cluster(n=13, mode="kauri", scenario="national")
        tree = cluster.policy.configuration(0)
        cluster.start()
        cluster.run(duration=2.0)
        prop_deliveries = trace.deliveries("prop")
        first_by_node = {}
        for event in prop_deliveries:
            first_by_node.setdefault(event.dst, event.time)
        internals = [n for n in tree.internal_nodes if n != tree.root]
        leaves_under = tree.children(internals[0])
        assert first_by_node[internals[0]] < min(
            first_by_node[leaf] for leaf in leaves_under if leaf in first_by_node
        )

    def test_star_has_single_hop_flows(self):
        cluster, trace = traced_cluster(n=7, mode="hotstuff-bls", scenario="national")
        cluster.start()
        cluster.run(duration=3.0)
        leader = cluster.policy.leader_of(0)
        for event in trace.sends("prop"):
            assert event.src == leader
        for event in trace.sends("vote"):
            assert event.dst == leader
