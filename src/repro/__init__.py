"""Kauri: Scalable BFT Consensus with Pipelined Tree-Based Dissemination
and Aggregation (SOSP 2021) -- a full reproduction on a deterministic
discrete-event substrate.

Quick start::

    from repro import run_experiment

    result = run_experiment(mode="kauri", scenario="global", n=100,
                            duration=30.0)
    print(result.throughput_txs, "tx/s")

Public surface:

- :func:`repro.runtime.experiment.run_experiment` / :class:`repro.runtime.cluster.Cluster`
  -- build and run deployments.
- :mod:`repro.core` -- the Kauri abstraction: tree ``broadcastMsg`` /
  ``waitFor`` (Algorithms 2-3), the §4.3 performance model, protocol nodes.
- :mod:`repro.topology` -- trees, robustness (Defs. 3-4), bins (Alg. 4),
  reconfiguration (§5).
- :mod:`repro.crypto` -- cryptographic collections (§3.3.2) over secp-style
  lists and BLS-style multisignatures.
- :mod:`repro.net` / :mod:`repro.sim` -- the simulated testbed: NICs,
  links, impatient channels (Alg. 1), fault injection, event kernel.
- :mod:`repro.analysis` -- generators for every table and figure of §7.
"""

from repro.config import (
    GLOBAL,
    KB,
    MB,
    NATIONAL,
    REGIONAL,
    SCENARIOS,
    NetworkParams,
    ProtocolConfig,
    max_faults,
    quorum_size,
    resilientdb_clusters,
)
from repro.core import MODES, PerfModel, ProtocolNode, TreeComm, mode_spec
from repro.runtime import (
    Cluster,
    ExperimentResult,
    Metrics,
    PoissonWorkload,
    SaturatedWorkload,
    run_experiment,
)
from repro.topology import ReconfigurationPolicy, Tree, build_star, build_tree

__version__ = "1.0.0"

__all__ = [
    "run_experiment",
    "Cluster",
    "ExperimentResult",
    "Metrics",
    "PerfModel",
    "ProtocolNode",
    "TreeComm",
    "MODES",
    "mode_spec",
    "Tree",
    "build_tree",
    "build_star",
    "ReconfigurationPolicy",
    "ProtocolConfig",
    "NetworkParams",
    "SCENARIOS",
    "GLOBAL",
    "REGIONAL",
    "NATIONAL",
    "KB",
    "MB",
    "max_faults",
    "quorum_size",
    "resilientdb_clusters",
    "SaturatedWorkload",
    "PoissonWorkload",
    "__version__",
]
