"""Robustness predicates for stars and trees (paper §3.2, Definitions 3-4).

- :func:`is_robust_star` -- Definition 3: the leader is correct.
- :func:`is_robust` -- Definition 4, verbatim: the root is correct and every
  pair of correct processes is connected by safe edges only.
- :func:`all_internals_correct` -- the paper's corollary, the *sufficient*
  condition the reconfiguration algorithm targets: every internal node
  (including the root) is correct. Implies :func:`is_robust` (property
  tested).
- :func:`can_reach_quorum` -- the weaker *necessary-and-sufficient* liveness
  condition noted in §3.2: a safe-edge path from the leader to a quorum of
  correct processes.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.topology.tree import Tree


def is_robust_star(tree: Tree, faulty: Iterable[int]) -> bool:
    """Definition 3: a star is robust iff the leader is correct."""
    return tree.root not in set(faulty)


def safe_edges_only(tree: Tree, path: Iterable[int], faulty: Set[int]) -> bool:
    """True iff every edge along ``path`` joins two correct processes."""
    nodes = list(path)
    return all(
        a not in faulty and b not in faulty for a, b in zip(nodes, nodes[1:])
    )


def is_robust(tree: Tree, faulty: Iterable[int]) -> bool:
    """Definition 4, checked directly.

    The leader must be correct and, for every pair of correct processes,
    the tree path between them must consist of safe edges only. Rather than
    enumerating O(n^2) pairs, we use the equivalent single-pass condition:
    every correct non-root process must reach the root through correct
    ancestors (then any two correct processes meet at the correct root via
    safe edges).
    """
    faulty_set = set(faulty)
    if tree.root in faulty_set:
        return False
    correct = [node for node in tree.nodes if node not in faulty_set]
    if len(correct) <= 1:
        return True
    # Pairs meet at their lowest common ancestor; both legs climb ancestor
    # chains, so "every correct node has an all-correct ancestor chain" is
    # equivalent to the pairwise definition *except* when a faulty node has
    # no correct descendants (its edges appear on no correct pair's path).
    for node in correct:
        for ancestor in tree.path_to_root(node)[1:]:
            if ancestor in faulty_set:
                return False
    return True


def all_internals_correct(tree: Tree, faulty: Iterable[int]) -> bool:
    """The §3.2 corollary: no internal node (including the root) is faulty.

    Sufficient for robustness; what Algorithm 4's bins guarantee.
    """
    faulty_set = set(faulty)
    return not any(node in faulty_set for node in tree.internal_nodes)


def reachable_correct(tree: Tree, faulty: Iterable[int]) -> Set[int]:
    """Correct processes connected to the root through correct nodes only."""
    faulty_set = set(faulty)
    if tree.root in faulty_set:
        return set()
    reached = set()
    frontier = [tree.root]
    while frontier:
        node = frontier.pop()
        reached.add(node)
        for child in tree.children(node):
            if child not in faulty_set:
                frontier.append(child)
    return reached


def can_reach_quorum(tree: Tree, faulty: Iterable[int], quorum: int) -> bool:
    """§3.2: consensus is reachable iff the leader has safe-edge paths to a
    quorum of correct processes (itself included)."""
    return len(reachable_correct(tree, faulty)) >= quorum
