"""End-to-end integration tests: full deployments reaching consensus.

Small system sizes and short horizons keep these fast; the benchmarks
exercise paper-scale deployments.
"""

import pytest

from repro import Cluster, ProtocolConfig, KB
from repro.config import NATIONAL


def run_cluster(
    n=7, mode="kauri", scenario="national", duration=5.0, seed=0, **kwargs
):
    cluster = Cluster(n=n, mode=mode, scenario=scenario, seed=seed, **kwargs)
    cluster.start()
    cluster.run(duration=duration)
    cluster.check_agreement()
    return cluster


@pytest.mark.parametrize("mode", ["kauri", "kauri-np", "hotstuff-secp", "hotstuff-bls"])
def test_all_modes_commit_blocks(mode):
    cluster = run_cluster(mode=mode)
    assert cluster.metrics.committed_blocks > 0
    assert len(cluster.metrics.view_changes) == 0


def test_every_correct_replica_commits_the_same_chain():
    cluster = run_cluster(n=13)
    heights = [node.committed_height for node in cluster.nodes]
    assert max(heights) > 0
    # replicas may lag by in-flight instances, but chains must agree
    reference = {}
    for node in cluster.nodes:
        for block in node.store.commit_log:
            reference.setdefault(block.height, block.hash)
            assert reference[block.height] == block.hash


def test_commit_heights_are_contiguous():
    cluster = run_cluster()
    records = cluster.metrics.records()
    assert [r.height for r in records] == list(range(1, len(records) + 1))


def test_latency_bounded_below_by_network():
    """A commit needs at least 4 dissemination/aggregation sweeps."""
    cluster = run_cluster(scenario="national")
    stats = cluster.metrics.latency_stats()
    assert stats["p50"] >= 4 * NATIONAL.rtt


def test_deterministic_same_seed():
    a = run_cluster(seed=42)
    b = run_cluster(seed=42)
    ra = [(r.height, r.block_hash, r.time) for r in a.metrics.records()]
    rb = [(r.height, r.block_hash, r.time) for r in b.metrics.records()]
    assert ra == rb
    assert a.sim.events_processed == b.sim.events_processed


def test_different_seeds_still_agree():
    for seed in (1, 2, 3):
        run_cluster(seed=seed)  # check_agreement inside


def test_kauri_outperforms_kauri_np():
    """§7.4: pipelining is what makes trees pay off."""
    kauri = run_cluster(mode="kauri", scenario="global", n=13, duration=30.0)
    kauri_np = run_cluster(mode="kauri-np", scenario="global", n=13, duration=30.0)
    assert (
        kauri.metrics.committed_blocks > 1.5 * kauri_np.metrics.committed_blocks
    )


def test_tree_beats_star_in_constrained_bandwidth():
    """§7.4: the global scenario penalises the star's leader uplink."""
    kauri = run_cluster(mode="kauri", scenario="global", n=31, duration=30.0)
    hotstuff = run_cluster(mode="hotstuff-secp", scenario="global", n=31, duration=30.0)
    assert (
        kauri.metrics.throughput_txs() > 2 * hotstuff.metrics.throughput_txs()
    )


def test_smaller_blocks_lower_latency():
    small = run_cluster(
        scenario="global", duration=20.0, config=ProtocolConfig(block_size=32 * KB)
    )
    large = run_cluster(
        scenario="global", duration=20.0, config=ProtocolConfig(block_size=1024 * KB)
    )
    assert (
        small.metrics.latency_stats()["p50"] < large.metrics.latency_stats()["p50"]
    )


def test_explicit_stretch_is_respected():
    cluster = run_cluster(config=ProtocolConfig(stretch=2.0))
    assert cluster.metrics.committed_blocks > 0


def test_poisson_workload_partial_blocks():
    from repro.runtime import PoissonWorkload

    config = ProtocolConfig(block_size=100 * KB)
    cluster = Cluster(
        n=7,
        mode="kauri",
        scenario="national",
        config=config,
        workload_factory=lambda node_id: PoissonWorkload(
            config, rate_txs=500.0, jitter=False
        ),
    )
    cluster.start()
    cluster.run(duration=10.0)
    cluster.check_agreement()
    records = cluster.metrics.records()
    committed_txs = sum(r.num_txs for r in records)
    assert 0 < committed_txs
    # arrivals bound the committed load
    assert committed_txs <= 500.0 * cluster.sim.now * 1.1
    assert any(r.payload_size < config.block_size for r in records)


def test_max_commits_stop_condition():
    cluster = Cluster(n=7, mode="kauri", scenario="national")
    cluster.start()
    cluster.run(duration=60.0, max_commits=5)
    assert cluster.metrics.committed_blocks >= 5
    assert cluster.sim.now < 60.0


def test_run_requires_stop_condition():
    from repro.errors import ConfigError

    cluster = Cluster(n=7)
    with pytest.raises(ConfigError):
        cluster.run()


def test_cluster_validation():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        Cluster(n=3)
    with pytest.raises(ConfigError):
        Cluster(n=None)
    with pytest.raises(ConfigError):
        Cluster(n=7, scenario="lunar")
    with pytest.raises(ConfigError):
        Cluster(n=7, mode="raft")
